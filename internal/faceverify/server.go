package faceverify

import (
	"fmt"
	"sync"

	"eleos/internal/exitio"
	"eleos/internal/kv"
	"eleos/internal/netsim"
	"eleos/internal/rpc"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

// Placement locates the descriptor database.
type Placement int

// Placements.
const (
	PlaceHost Placement = iota
	PlaceEnclave
	PlaceSUVM
)

func (p Placement) String() string {
	switch p {
	case PlaceHost:
		return "host"
	case PlaceEnclave:
		return "epc"
	default:
		return "suvm"
	}
}

// SyscallMode selects the network path — a thin alias over the exitio
// dispatch modes (the per-server switch moved into internal/exitio).
type SyscallMode = exitio.Mode

// Syscall mechanisms.
const (
	SysNative   = exitio.ModeDirect
	SysOCall    = exitio.ModeOCall
	SysRPC      = exitio.ModeRPCSync
	SysRPCAsync = exitio.ModeRPCAsync
)

// Compute cost model: the LBP transform and chi-square comparison are
// charged per pixel and per descriptor byte respectively (the 8-compare
// LBP kernel vectorizes well; ~2 cycles/pixel keeps the native server
// network-bound at two threads, as the paper's is).
const (
	lbpCyclesPerPixel    = 2
	chiSquareCyclesPerB  = 1
	requestEnvelopeBytes = KeyBytes + ImageBytes + 28
	responseBytes        = 64 + 28
)

// RequestBytes is the wire size of one verification request.
const RequestBytes = requestEnvelopeBytes

// Config describes a verification server.
type Config struct {
	// Identities is the number of enrolled persons (2,000 ≈ the paper's
	// 450 MB database).
	Identities uint64
	// Placement locates the descriptor table.
	Placement Placement
	// Heap is required for PlaceSUVM: a whole *suvm.Heap, or one
	// service's *suvm.Domain when the server is a co-resident tenant of
	// a multi-service enclave.
	Heap suvm.Allocator
	// Synthetic enrolls fabricated descriptors (benchmark mode: loads
	// in milliseconds, same memory behaviour); when false, enrollment
	// runs the real LBP pipeline over rendered images (test mode).
	Synthetic bool
}

// DatabaseBytes returns the approximate table size for n identities.
func DatabaseBytes(n uint64) uint64 {
	return n * (DescriptorBytes + KeyBytes + 64)
}

// Store is the shared descriptor database.
type Store struct {
	plat  *sgx.Platform
	cfg   Config
	table *kv.BlobTable
	mu    sync.Mutex // BlobTable insertions are setup-only; Get is read-only after load

	// queryCache memoizes real LBP computation per (id,variant) so
	// benchmarks do not re-run 2.6M-pixel transforms per request on the
	// host machine; the virtual cost is charged per request regardless.
	queryMu    sync.Mutex
	queryCache map[[2]uint64][]byte
}

// NewStore builds and enrolls the database; setup pays the unmeasured
// loading costs.
func NewStore(plat *sgx.Platform, setup *sgx.Thread, cfg Config) (*Store, error) {
	if cfg.Identities == 0 {
		return nil, fmt.Errorf("faceverify: at least one identity required")
	}
	size := DatabaseBytes(cfg.Identities) + (1 << 20)
	var mem kv.Mem
	switch cfg.Placement {
	case PlaceHost:
		mem = kv.HostRegion(plat, size)
	case PlaceEnclave:
		if setup.Enclave() == nil {
			return nil, fmt.Errorf("faceverify: enclave placement requires an enclave thread")
		}
		mem = kv.EnclaveRegion(setup.Enclave(), size)
	case PlaceSUVM:
		if cfg.Heap == nil {
			return nil, fmt.Errorf("faceverify: SUVM placement requires a heap")
		}
		r, err := kv.NewSUVMRegion(cfg.Heap, size)
		if err != nil {
			return nil, err
		}
		mem = r
	}
	buckets := uint64(1)
	for buckets < cfg.Identities {
		buckets *= 2
	}
	table, err := kv.NewBlobTable(mem, buckets)
	if err != nil {
		return nil, err
	}
	s := &Store{plat: plat, cfg: cfg, table: table, queryCache: make(map[[2]uint64][]byte)}
	for n := uint64(0); n < cfg.Identities; n++ {
		var desc []byte
		if cfg.Synthetic {
			desc = SynthDescriptor(n)
		} else {
			desc = LBPDescriptor(SynthImage(n, 0))
		}
		if err := table.Put(setup, PersonID(n), desc); err != nil {
			return nil, fmt.Errorf("faceverify: enrolling identity %d: %w", n, err)
		}
	}
	return s, nil
}

// Identities returns the enrolled population size.
func (s *Store) Identities() uint64 { return s.cfg.Identities }

// Lookup fetches the enrolled descriptor of identity id into buf,
// charging the simulated memory costs to th. Returns the descriptor
// length.
func (s *Store) Lookup(th *sgx.Thread, id uint64, buf []byte) (int, error) {
	return s.table.Get(th, PersonID(id), buf)
}

// queryDescriptor returns the descriptor of capture (id, variant),
// computing it once per pair on the host machine.
func (s *Store) queryDescriptor(id, variant uint64) []byte {
	key := [2]uint64{id, variant}
	s.queryMu.Lock()
	defer s.queryMu.Unlock()
	if d, ok := s.queryCache[key]; ok {
		return d
	}
	var d []byte
	if s.cfg.Synthetic {
		d = SynthDescriptor(id)
	} else {
		d = LBPDescriptor(SynthImage(id, variant))
	}
	if len(s.queryCache) < 4096 {
		s.queryCache[key] = d
	}
	return d
}

// Server is one worker front end (socket + exit-less I/O queue) over
// the store.
type Server struct {
	store *Store
	io    *exitio.Queue
	sock  *netsim.Socket
	desc  []byte
}

// NewServer wraps the store for one serving thread. pool is required
// for the RPC modes.
func NewServer(store *Store, sys SyscallMode, pool *rpc.Pool) (*Server, error) {
	if sys.NeedsPool() && pool == nil {
		return nil, fmt.Errorf("faceverify: RPC mode requires a worker pool")
	}
	eng, err := exitio.NewEngine(sys, pool)
	if err != nil {
		return nil, fmt.Errorf("faceverify: %w", err)
	}
	return NewServerIO(store, eng), nil
}

// NewServerIO wraps the store over an existing engine, so servers on
// several threads share one engine and its counters.
func NewServerIO(store *Store, eng *exitio.Engine) *Server {
	return NewServerIOGroup(store, eng, nil)
}

// NewServerIOGroup is NewServerIO with the server's queue attributed to
// a counter group — how a store running as one service of a
// multi-service enclave reports its doorbells per service (nil grp
// behaves like NewServerIO).
func NewServerIOGroup(store *Store, eng *exitio.Engine, grp *exitio.Group) *Server {
	return &Server{
		store: store,
		io:    eng.NewGroupQueue(grp),
		sock:  netsim.NewSocket(store.plat, ImageBytes+4096),
		desc:  make([]byte, DescriptorBytes),
	}
}

// Close releases the socket.
func (s *Server) Close() { s.sock.Close() }

// Verify processes one request end to end: receive the (encrypted)
// image, decrypt it, compute its LBP descriptor, fetch the enrolled
// descriptor for the claimed identity from the database, compare, and
// send the verdict. Returns whether the identity was accepted.
func (s *Server) Verify(th *sgx.Thread, id, variant uint64) (bool, error) {
	m := s.store.plat.Model

	// Receive the request (claimed ID + image). In async mode the
	// previous verdict's deferred send is still staged and the receive
	// links onto it — one doorbell for both.
	if s.io.Staged() > 0 {
		s.io.PushLinked(exitio.Recv{Sock: s.sock, N: RequestBytes})
	} else {
		s.io.Push(exitio.Recv{Sock: s.sock, N: RequestBytes})
	}
	if _, err := s.io.SubmitAndWait(th); err != nil {
		return false, err
	}
	// Pull the image out of the untrusted staging buffer (the enclave
	// reads it while decrypting) and charge the decryption.
	th.Read(s.sock.UserBuf(), s.desc[:min(len(s.desc), ImageBytes)])
	netsim.CryptoCost(th.T, m, RequestBytes)

	// LBP transform of the query image.
	th.T.Charge(lbpCyclesPerPixel * ImageBytes)
	query := s.store.queryDescriptor(id, variant)

	// Fetch the enrolled descriptor — the 232 KiB read over the large
	// table that Fig 10 stresses.
	n, err := s.store.table.Get(th, PersonID(id), s.desc)
	if err != nil {
		return false, err
	}

	// Compare.
	th.T.Charge(chiSquareCyclesPerB * uint64(n))
	accepted := ChiSquare(query, s.desc[:n]) < VerifyThreshold

	// Respond (deferred in async mode: the send rides the next
	// request's doorbell; Flush pushes out the last one).
	netsim.CryptoCost(th.T, m, responseBytes)
	s.io.Push(exitio.Send{Sock: s.sock, N: responseBytes})
	if s.io.Mode() != exitio.ModeRPCAsync {
		if _, err := s.io.SubmitAndWait(th); err != nil {
			return false, err
		}
	}
	return accepted, nil
}

// Flush completes any deferred response send (async mode); a no-op in
// the synchronous modes.
func (s *Server) Flush(th *sgx.Thread) error {
	_, err := s.io.SubmitAndWait(th)
	return err
}

// IO returns the server's submission queue (stats, tests).
func (s *Server) IO() *exitio.Queue { return s.io }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

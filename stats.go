package eleos

// RuntimeStats is the unified observability tree: one call snapshots
// every layer of the runtime. It replaces stitching together
// Pool().Stats(), IOEngine().Stats() and per-enclave Stats() calls —
// those accessors remain as thin wrappers, but new code should read
// this tree.
type RuntimeStats struct {
	// RPC is the exit-less worker pool: call counts per submission
	// path, queue depths, backoff activity, residual wait cycles, and
	// the live worker count with its resize history.
	RPC RPCStats
	// IO is the exit-less I/O engine: doorbells, chains, linked ops,
	// reap-stall cycles and live mode switches.
	IO IOStats
	// Heaps carries the SUVM counters of every live enclave, in
	// creation order (enclaves removed by Destroy drop out).
	Heaps []HeapStats
	// Tune is the self-tuning controller. Enabled is false (and the
	// rest zero) when the runtime was built without autotuning.
	Tune TuneStats
}

// Stats snapshots the whole runtime. The layers are read one after the
// other without a global lock, so the tree is per-layer consistent (each
// subsystem snapshot is itself coherent) rather than a frozen instant
// across layers — the same contract the individual accessors always had.
func (r *Runtime) Stats() RuntimeStats {
	st := RuntimeStats{RPC: r.pool.Stats(), IO: r.io.Stats()}
	r.mu.Lock()
	encls := append([]*Enclave(nil), r.enclaves...)
	r.mu.Unlock()
	for _, e := range encls {
		st.Heaps = append(st.Heaps, e.heap.Stats())
	}
	if r.tuner != nil {
		st.Tune = r.tuner.Stats()
	}
	return st
}

// Package analysistest exercises eleoslint analyzers against golden
// testdata packages, in the manner of
// golang.org/x/tools/go/analysis/analysistest: a testdata directory
// holds a src/ tree of small packages, lines that should be flagged
// carry a `// want "regexp"` comment, and the test fails on any
// mismatch in either direction — a diagnostic with no want, or a want
// with no diagnostic.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"eleos/internal/lint/analysis"
	"eleos/internal/lint/load"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(".*")\s*$`)

// Run loads the testdata tree (a directory containing src/), runs the
// analyzer over the named packages, and checks diagnostics against the
// `// want` expectations in their sources.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	prog, err := load.Load(testdata)
	if err != nil {
		t.Fatalf("loading %s: %v", testdata, err)
	}
	var pkgs []*load.Package
	for _, path := range pkgPaths {
		pkg := prog.Package(path)
		if pkg == nil {
			t.Fatalf("package %q not found under %s", path, testdata)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a}, pkgs)
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, prog, pkgs)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants scans the packages' comments for `// want "re"` markers.
func collectWants(t *testing.T, prog *load.Program, pkgs []*load.Package) []want {
	t.Helper()
	var out []want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, g := range f.Comments {
				for _, c := range g.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pat, err := strconv.Unquote(m[1])
					if err != nil {
						t.Fatalf("%s: bad want string %s: %v", position(prog.Fset, c.Pos()), m[1], err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", position(prog.Fset, c.Pos()), pat, err)
					}
					pos := prog.Fset.Position(c.Pos())
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

func position(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return filepath.Base(p.Filename) + ":" + strings.TrimLeft(strconv.Itoa(p.Line), " ")
}

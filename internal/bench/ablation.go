package bench

import (
	"math/rand"

	"eleos/internal/kv"
	"eleos/internal/loadgen"
	"eleos/internal/phys"
	"eleos/internal/report"
	"eleos/internal/sgx"
	"eleos/internal/suvm"
)

func init() {
	register("abl-wb", "Ablation: clean-page write-back avoidance", ablWriteBack)
	register("abl-link", "Ablation: spointer link caching (one PT lookup per page)", ablLinkCache)
	register("abl-pgsz", "Ablation: EPC++ page size sweep", ablPageSize)
	register("abl-evict", "Ablation: EPC++ eviction policy", ablEviction)
}

// suvmScan runs a mixed read-mostly random workload over a working set
// far beyond EPC++ and returns cycles/op.
func suvmScan(cfg suvm.Config, bufBytes uint64, ops int, writeFrac int) float64 {
	v := enclaveEnv(0)
	h, err := suvm.New(v.encl, v.th, cfg)
	if err != nil {
		panic(err)
	}
	v.heap = h
	p, err := h.Malloc(bufBytes)
	if err != nil {
		panic(err)
	}
	buf := make([]byte, 4096)
	for off := uint64(0); off+4096 <= bufBytes; off += 4096 {
		if err := p.WriteAt(v.th, off, buf); err != nil {
			panic(err)
		}
	}
	rng := rand.New(rand.NewSource(21))
	run := func() {
		for i := 0; i < ops; i++ {
			off := uint64(rng.Intn(int(bufBytes/4096))) * 4096
			if rng.Intn(100) < writeFrac {
				_ = p.WriteAt(v.th, off, buf)
			} else {
				_ = p.ReadAt(v.th, off, buf)
			}
		}
	}
	run() // steady state
	v.resetCounters()
	run()
	return perOp(v.th.T.Cycles(), ops)
}

// ablWriteBack: the §3.2.4 clean-page optimization. A read-mostly
// workload (10% writes) evicts mostly clean pages; skipping their
// write-back should approach the paper's up-to-1.7x claim.
func ablWriteBack(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	t := report.New("Ablation: write-back avoidance for clean pages",
		"write fraction", "always write back (cyc/op)", "skip clean (cyc/op)", "gain")
	t.Note = "paper claims up to 1.7x from this optimization"
	for _, wf := range []int{0, 10, 50, 100} {
		on := suvmScan(suvm.Config{PageCacheBytes: 16 << 20, BackingBytes: 1 << 30}, 128<<20, rc.Ops/2, wf)
		off := suvmScan(suvm.Config{PageCacheBytes: 16 << 20, BackingBytes: 1 << 30, WriteBackClean: true}, 128<<20, rc.Ops/2, wf)
		t.AddRow(wf, off, on, report.Ratio(off, on))
	}
	return &Result{ID: "abl-wb", Title: "Write-back avoidance", Tables: []*report.Table{t}}, nil
}

// ablLinkCache: the value of caching the translated frame in the
// spointer. A sequential in-page scan via a linked spointer pays one
// lookup per page; the same scan through ReadAt pays one per access.
func ablLinkCache(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	v := enclaveEnv(48 << 20)
	const size = 4 << 20 // LLC-resident: isolates translation costs
	p, err := v.heap.Malloc(size)
	if err != nil {
		panic(err)
	}
	buf := make([]byte, 4096)
	for off := uint64(0); off+4096 <= size; off += 4096 {
		_ = p.WriteAt(v.th, off, buf)
	}
	t := report.New("Ablation: spointer link caching",
		"access bytes", "linked walk (cyc/op)", "unlinked ReadAt (cyc/op)", "link gain")
	t.Note = "link caching amortizes the page-table lookup to one per page (§3.2.2)"
	warm := func() {
		w := make([]byte, 4096)
		for off := uint64(0); off+4096 <= size; off += 4096 {
			_ = p.ReadAt(v.th, off, w)
		}
	}
	for _, elem := range []int{16, 64, 256, 1024} {
		ops := rc.Ops
		b := make([]byte, elem)
		// Linked walk over a warm cache.
		warm()
		_ = p.Seek(v.th, 0)
		v.th.T.Reset()
		for i := 0; i < ops; i++ {
			if p.Offset()+uint64(elem) > size {
				_ = p.Seek(v.th, 0)
			}
			if err := p.Read(v.th, b); err != nil {
				panic(err)
			}
			_ = p.Advance(v.th, int64(elem))
		}
		linked := perOp(v.th.T.Cycles(), ops)
		// Unlinked positioned reads over the same sequence, same warmth.
		warm()
		v.th.T.Reset()
		off := uint64(0)
		for i := 0; i < ops; i++ {
			if off+uint64(elem) > size {
				off = 0
			}
			if err := p.ReadAt(v.th, off, b); err != nil {
				panic(err)
			}
			off += uint64(elem)
		}
		unlinked := perOp(v.th.T.Cycles(), ops)
		t.AddRow(elem, linked, unlinked, report.Ratio(unlinked, linked))
	}
	return &Result{ID: "abl-link", Title: "Link caching", Tables: []*report.Table{t}}, nil
}

// ablPageSize: the compile-time EPC++ page size knob (§3.4). Small
// pages waste fault work on metadata; large pages waste bandwidth on
// unused bytes when accesses are small.
func ablPageSize(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	t := report.New("Ablation: EPC++ page size (random 512B accesses over 128MB, EPC++ 16MB)",
		"page size", "cyc/op", "major faults / 1k ops")
	t.Note = "larger pages amortize crypto but page in unused bytes (§3.4)"
	for _, ps := range []int{512, 1024, 4096, 16384} {
		v := enclaveEnv(0)
		h, err := suvm.New(v.encl, v.th, suvm.Config{
			PageCacheBytes: 16 << 20, PageSize: ps, SubPageSize: minInt(ps, 512), BackingBytes: 1 << 30,
		})
		if err != nil {
			panic(err)
		}
		v.heap = h
		const size = 128 << 20
		p, err := h.Malloc(size)
		if err != nil {
			panic(err)
		}
		chunk := make([]byte, 64<<10)
		for off := uint64(0); off+uint64(len(chunk)) <= size; off += uint64(len(chunk)) {
			_ = p.WriteAt(v.th, off, chunk)
		}
		ops := rc.Ops / 2
		b := make([]byte, 512)
		rng := rand.New(rand.NewSource(31))
		run := func() {
			for i := 0; i < ops; i++ {
				off := uint64(rng.Intn(size/512)) * 512
				if err := p.ReadAt(v.th, off, b); err != nil {
					panic(err)
				}
			}
		}
		run()
		v.resetCounters()
		run()
		st := h.Stats()
		t.AddRow(report.Bytes(uint64(ps)), perOp(v.th.T.Cycles(), ops),
			float64(st.MajorFaults)*1000/float64(ops))
	}
	return &Result{ID: "abl-pgsz", Title: "Page size sweep", Tables: []*report.Table{t}}, nil
}

// ablEviction: clock vs FIFO vs random victim selection under a skewed
// (Zipf-ish hot/cold) access pattern, where recency tracking pays off.
func ablEviction(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	t := report.New("Ablation: eviction policy under a skewed access pattern",
		"policy", "cyc/op", "major faults / 1k ops", "clean drops")
	t.Note = "clock's reference bits protect the hot set; FIFO and random evict it blindly"
	const size = 64 << 20
	const hotFrac = 8 // 1/8 of pages (8MB, half of EPC++) get 80% of accesses
	for _, pol := range []suvm.EvictionPolicy{suvm.PolicyClock, suvm.PolicyFIFO, suvm.PolicyRandom} {
		v := enclaveEnv(0)
		h, err := suvm.New(v.encl, v.th, suvm.Config{
			PageCacheBytes: 16 << 20, BackingBytes: 1 << 30, Policy: pol,
		})
		if err != nil {
			panic(err)
		}
		v.heap = h
		p, err := h.Malloc(size)
		if err != nil {
			panic(err)
		}
		buf := make([]byte, 4096)
		for off := uint64(0); off+4096 <= size; off += 4096 {
			_ = p.WriteAt(v.th, off, buf)
		}
		pages := size / phys.PageSize
		rng := rand.New(rand.NewSource(41))
		ops := rc.Ops * 2 // the hot set needs several passes to stabilize
		run := func() {
			for i := 0; i < ops; i++ {
				var pg int
				if rng.Intn(100) < 80 {
					pg = rng.Intn(pages / hotFrac)
				} else {
					pg = rng.Intn(pages)
				}
				if err := p.ReadAt(v.th, uint64(pg)*phys.PageSize, buf); err != nil {
					panic(err)
				}
			}
		}
		run()
		v.resetCounters()
		run()
		st := h.Stats()
		t.AddRow(pol.String(), perOp(v.th.T.Cycles(), ops),
			float64(st.MajorFaults)*1000/float64(ops), st.CleanDrops)
	}
	return &Result{ID: "abl-evict", Title: "Eviction policy", Tables: []*report.Table{t}}, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func init() {
	register("abl-batch", "Ablation: SCONE-style syscall batching vs exit-less RPC", ablBatch)
}

// ablBatch contrasts the two known ways to cut exit costs: batching
// system calls so one exit amortizes over N of them (SCONE's approach,
// §7) versus eliminating the exit entirely (Eleos RPC). The workload
// interleaves syscalls with pointer-chasing enclave work, so batching's
// remaining per-batch TLB flush still costs, while RPC keeps the TLB
// warm at any batch size.
func ablBatch(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	t := report.New("Ablation: batched OCALLs (SCONE-style) vs exit-less RPC (cycles/syscall)",
		"batch", "naive ocall", "batched ocall", "eleos rpc", "rpc vs batched")
	t.Note = "batching amortizes direct exit costs; only exit-less also keeps the TLB"

	ops := rc.Ops
	const workBytes = 2 << 20
	for _, batch := range []int{1, 4, 16, 64} {
		var results [3]float64
		for mode := 0; mode < 3; mode++ { // 0 naive, 1 batched, 2 rpc
			v := enclaveEnv(0)
			if mode == 2 {
				v.withPool(2)
			}
			// Pointer-chasing working set: one chained table walk per
			// syscall keeps the TLB relevant.
			mem := kvEnclaveTable(v)
			gen := loadgen.NewKeyGen(3, 64<<10)
			syscalls := 0
			v.th.T.Reset()
			for syscalls < ops {
				switch mode {
				case 0:
					for i := 0; i < batch; i++ {
						v.th.OCall(func(h *sgx.HostCtx) { h.Syscall(nil) })
						syscalls++
						_, _ = mem.Get(v.th, gen.Next())
					}
				case 1:
					v.th.OCall(func(h *sgx.HostCtx) {
						for i := 0; i < batch; i++ {
							h.Syscall(nil)
						}
					})
					syscalls += batch
					for i := 0; i < batch; i++ {
						_, _ = mem.Get(v.th, gen.Next())
					}
				case 2:
					for i := 0; i < batch; i++ {
						v.pool.Call(v.th, func(h *sgx.HostCtx) { h.Syscall(nil) })
						syscalls++
						_, _ = mem.Get(v.th, gen.Next())
					}
				}
			}
			results[mode] = perOp(v.th.T.Cycles(), syscalls)
			v.close()
		}
		t.AddRow(batch, results[0], results[1], results[2],
			report.Ratio(results[1], results[2]))
	}
	return &Result{ID: "abl-batch", Title: "Syscall batching vs exit-less", Tables: []*report.Table{t}}, nil
}

// kvEnclaveTable builds a small chained hash table in the enclave heap,
// loaded with 64k entries.
func kvEnclaveTable(v *env) *kv.FixedTable {
	const entries = 64 << 10
	buckets := uint64(2 * entries)
	mem := kv.EnclaveRegion(v.encl, kv.FixedTableMemSize(kv.Chaining, buckets, entries))
	img, err := kv.BuildFixedImage(kv.Chaining, buckets, entries)
	if err != nil {
		panic(err)
	}
	for off := 0; off < len(img); off += 1 << 20 {
		end := off + 1<<20
		if end > len(img) {
			end = len(img)
		}
		if err := mem.Write(v.th, uint64(off), img[off:end]); err != nil {
			panic(err)
		}
	}
	tab, err := kv.NewFixedTable(mem, kv.Chaining, buckets, entries)
	if err != nil {
		panic(err)
	}
	tab.SetLoaded(entries)
	return tab
}

package suvm

import (
	"errors"
	"testing"

	"eleos/internal/sgx"
)

// Failure-path coverage: the ways a SUVM heap can be driven into a
// corner, and the behaviour it promises there.

func TestShrinkBlockedByPinnedFrames(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 64 << 10, BackingBytes: 16 << 20}) // 16 frames
	// Pin 12 frames with linked spointers.
	var pinned []*SPtr
	for i := 0; i < 12; i++ {
		p, err := e.h.Malloc(4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(e.th, []byte{1}); err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, p)
	}
	// Shrinking to 8 frames cannot succeed while 12 are pinned.
	if err := e.h.ResizeTo(e.th, 8*4096); err == nil {
		t.Fatal("shrink below the pinned set succeeded")
	}
	// After unlinking, the shrink goes through.
	for _, p := range pinned {
		p.Unlink(e.th)
	}
	if err := e.h.ResizeTo(e.th, 8*4096); err != nil {
		t.Fatalf("shrink after unpin: %v", err)
	}
	if got := e.h.ActiveFrames(); got != 8 {
		t.Fatalf("ActiveFrames=%d", got)
	}
}

func TestEPCPPExhaustionReturnsError(t *testing.T) {
	// Pinning every frame and then faulting cannot be served; the heap
	// reports ErrOutOfEPC instead of deadlocking — and recovers once a
	// pin is dropped.
	e := newEnv(t, Config{PageCacheBytes: 16 << 10, BackingBytes: 16 << 20}) // 4 frames
	var ptrs []*SPtr
	for i := 0; i < 4; i++ {
		p, _ := e.h.Malloc(4096)
		_ = p.Write(e.th, []byte{1})
		ptrs = append(ptrs, p)
	}
	extra, _ := e.h.Malloc(4096)
	if err := extra.Write(e.th, []byte{2}); !errors.Is(err, sgx.ErrOutOfEPC) {
		t.Fatalf("fault with every frame pinned: err = %v, want ErrOutOfEPC", err)
	}
	// The heap stays fully usable: unpinning one frame lets the same
	// access succeed.
	ptrs[0].Unlink(e.th)
	if err := extra.Write(e.th, []byte{2}); err != nil {
		t.Fatalf("fault after unpin: %v", err)
	}
	var b [1]byte
	if err := extra.ReadAt(e.th, 0, b[:]); err != nil || b[0] != 2 {
		t.Fatalf("read back after recovery: %v, b=%d", err, b[0])
	}
	for _, p := range ptrs[1:] {
		p.Unlink(e.th)
	}
}

func TestBackingStoreExhaustion(t *testing.T) {
	e := newEnv(t, Config{PageCacheBytes: 64 << 10, BackingBytes: 1 << 20})
	// The cached half is 512KiB; a 1MiB allocation cannot fit.
	if _, err := e.h.Malloc(1 << 20); !errors.Is(err, ErrBackingFull) {
		t.Fatalf("oversized malloc error = %v", err)
	}
	// Exhaust with small allocations, then verify recovery after free.
	var ok []*SPtr
	for {
		p, err := e.h.Malloc(64 << 10)
		if err != nil {
			break
		}
		ok = append(ok, p)
	}
	if len(ok) == 0 {
		t.Fatal("no allocations succeeded")
	}
	if err := e.h.Free(e.th, ok[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := e.h.Malloc(64 << 10); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestZeroAndInvalidConfigs(t *testing.T) {
	e := newEnv(t, smallCfg())
	if _, err := e.h.Malloc(0); err == nil {
		t.Fatal("zero-byte malloc accepted")
	}
	if _, err := e.h.MallocDirect(0); err == nil {
		t.Fatal("zero-byte direct malloc accepted")
	}
	bad := []Config{
		{},                     // no page cache
		{PageCacheBytes: 4096}, // fewer than 4 frames
		{PageCacheBytes: 1 << 20, PageSize: 3000},                    // not a power of two
		{PageCacheBytes: 1 << 20, PageSize: 4096, SubPageSize: 3000}, // does not divide
		{PageCacheBytes: 1 << 20, BackingBytes: 3 << 20},             // not a power of two
	}
	for i, cfg := range bad {
		if _, err := New(e.encl, e.th, cfg); err == nil {
			t.Fatalf("bad config %d accepted: %+v", i, cfg)
		}
	}
}

func TestCrossHeapFreeRejected(t *testing.T) {
	e1 := newEnv(t, smallCfg())
	e2 := newEnv(t, smallCfg())
	p, _ := e1.h.Malloc(4096)
	if err := e2.h.Free(e2.th, p); err == nil {
		t.Fatal("freeing another heap's spointer succeeded")
	}
	if err := e1.h.Free(e1.th, p); err != nil {
		t.Fatal(err)
	}
}

func TestBadFreeLeavesLinkIntact(t *testing.T) {
	// Regression: Free used to unlink the spointer before checking it
	// was a live allocation of this heap, so a rejected Free silently
	// dropped the caller's pin (and with it the frame's eviction
	// protection). A failed Free must leave the spointer fully usable.
	e := newEnv(t, smallCfg())
	p, err := e.h.Malloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(e.th, []byte{7}); err != nil { // links p
		t.Fatal(err)
	}
	if !p.Linked() {
		t.Fatal("write did not link the spointer")
	}

	// A foreign-heap Free must not touch the link.
	other := newEnv(t, smallCfg())
	if err := other.h.Free(other.th, p); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("foreign free: err = %v, want ErrDoubleFree", err)
	}
	if !p.Linked() {
		t.Fatal("rejected foreign free unlinked the spointer")
	}

	// A Free of a non-allocation spointer (a mounted segment) on the
	// owning heap must not touch the link either.
	seg, err := NewSegment(e.encl.Platform(), 4096, e.h.PageSize())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := e.h.Attach(e.th, seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.Write(e.th, []byte{9}); err != nil { // links sp
		t.Fatal(err)
	}
	if err := e.h.Free(e.th, sp); !errors.Is(err, ErrDoubleFree) {
		t.Fatalf("free of segment spointer: err = %v, want ErrDoubleFree", err)
	}
	if !sp.Linked() {
		t.Fatal("rejected segment free unlinked the spointer")
	}
	var b [1]byte
	if err := sp.Read(e.th, b[:]); err != nil || b[0] != 9 {
		t.Fatalf("segment spointer after rejected free: %v, b=%d", err, b[0])
	}
	sp.Unlink(e.th)
	if err := e.h.Detach(e.th, sp); err != nil {
		t.Fatalf("detach after rejected free: %v", err)
	}

	if err := p.Read(e.th, b[:]); err != nil || b[0] != 7 {
		t.Fatalf("spointer after rejected frees: %v, b=%d", err, b[0])
	}
	if err := e.h.Free(e.th, p); err != nil {
		t.Fatal(err)
	}
}

func TestManyAllocationsChurn(t *testing.T) {
	// Allocator stress: interleaved malloc/free of mixed sizes must
	// neither leak backing space nor corrupt neighbours.
	e := newEnv(t, Config{PageCacheBytes: 256 << 10, BackingBytes: 32 << 20})
	type alloc struct {
		p     *SPtr
		stamp byte
	}
	var live []alloc
	rng := newXorshift(99)
	for i := 0; i < 600; i++ {
		if len(live) > 0 && rng()%3 == 0 {
			k := int(rng() % uint64(len(live)))
			a := live[k]
			n := a.p.Size()
			if n > 32 {
				n = 32
			}
			b := make([]byte, n)
			if err := a.p.ReadAt(e.th, 0, b); err != nil {
				t.Fatal(err)
			}
			for _, x := range b {
				if x != a.stamp {
					t.Fatalf("allocation corrupted: got %d want %d", x, a.stamp)
				}
			}
			if err := e.h.Free(e.th, a.p); err != nil {
				t.Fatal(err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		size := uint64(16 << (rng() % 10)) // 16B..8KiB
		p, err := e.h.Malloc(size)
		if err != nil {
			t.Fatalf("malloc %d at step %d: %v", size, i, err)
		}
		stamp := byte(rng())
		n := size
		if n > 32 {
			n = 32
		}
		if err := p.MemsetAt(e.th, 0, n, stamp); err != nil {
			t.Fatal(err)
		}
		live = append(live, alloc{p: p, stamp: stamp})
	}
	for _, a := range live {
		if err := e.h.Free(e.th, a.p); err != nil {
			t.Fatal(err)
		}
	}
}

func newXorshift(seed uint64) func() uint64 {
	x := seed
	return func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
}

package trustboundary_test

import (
	"testing"

	"eleos/internal/lint/analysistest"
	"eleos/internal/lint/trustboundary"
)

func TestTrustBoundary(t *testing.T) {
	analysistest.Run(t, "testdata", trustboundary.Analyzer,
		"trusted", "untrusted", "facade", "sgx", "hostmem")
}

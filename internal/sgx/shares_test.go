package sgx

import (
	"reflect"
	"sync"
	"testing"

	"eleos/internal/phys"
)

// Share-table arbitration (SetEPCShares): per-enclave quotas, the
// unlisted remainder, victim scoring against non-even shares, and
// rebalance-under-load safety.

func TestShareTableQuotas(t *testing.T) {
	p := testPlatform(t, 4<<20) // 1024 frames
	e1, _ := p.NewEnclave()
	e2, _ := p.NewEnclave()
	e3, _ := p.NewEnclave()
	defer e1.Destroy()
	defer e2.Destroy()
	defer e3.Destroy()

	// Default: the classic even split, for listed and legacy ioctls alike.
	even := uint64(1024/3) * phys.PageSize
	for _, e := range []*Enclave{e1, e2, e3} {
		if got := p.Driver.AvailableEPCBytesFor(e.ID()); got != even {
			t.Fatalf("default share for enclave %d = %d, want %d", e.ID(), got, even)
		}
	}
	if got := p.Driver.AvailableEPCBytes(); got != even {
		t.Fatalf("legacy ioctl = %d, want %d", got, even)
	}
	if p.Driver.EPCShares() != nil {
		t.Fatal("share table non-nil before any install")
	}

	// Listed enclave gets its table entry; unlisted ones split the rest.
	p.Driver.SetEPCShares(map[int]uint64{e1.ID(): 2 << 20})
	if got := p.Driver.AvailableEPCBytesFor(e1.ID()); got != 2<<20 {
		t.Fatalf("listed share = %d, want %d", got, 2<<20)
	}
	rest := uint64((1024-512)/2) * phys.PageSize // 1 MiB
	for _, e := range []*Enclave{e2, e3} {
		if got := p.Driver.AvailableEPCBytesFor(e.ID()); got != rest {
			t.Fatalf("unlisted share for enclave %d = %d, want %d", e.ID(), got, rest)
		}
	}
	if got := p.Driver.AvailableEPCBytes(); got != rest {
		t.Fatalf("legacy ioctl under a table = %d, want unlisted share %d", got, rest)
	}
	if got := p.Driver.EPCShares(); !reflect.DeepEqual(got, map[int]uint64{e1.ID(): 2 << 20}) {
		t.Fatalf("EPCShares = %v", got)
	}

	// A share beyond the machine clamps to the whole PRM; entries for ids
	// with no live enclave don't eat into the unlisted remainder.
	p.Driver.SetEPCShares(map[int]uint64{e1.ID(): 1 << 30, 9999: 1 << 30})
	if got := p.Driver.AvailableEPCBytesFor(e1.ID()); got != 4<<20 {
		t.Fatalf("oversized share clamped to %d, want whole PRM %d", got, 4<<20)
	}
	if got := p.Driver.AvailableEPCBytesFor(e2.ID()); got != 0 {
		t.Fatalf("unlisted share with PRM fully promised = %d, want 0", got)
	}

	// Clearing restores the even split bit-for-bit, and only installs
	// count as ShareUpdates.
	p.Driver.SetEPCShares(nil)
	if got := p.Driver.AvailableEPCBytesFor(e2.ID()); got != even {
		t.Fatalf("share after clear = %d, want %d", got, even)
	}
	if p.Driver.EPCShares() != nil {
		t.Fatal("share table survives a clear")
	}
	if got := p.Driver.Stats().ShareUpdates; got != 2 {
		t.Fatalf("ShareUpdates = %d, want 2", got)
	}
}

// TestVictimSelectionHonorsShares pins reclaim scoring to the table:
// with both enclaves equally resident, the one whose share was cut must
// absorb the evictions.
func TestVictimSelectionHonorsShares(t *testing.T) {
	p := testPlatform(t, 1<<20) // 256 frames
	e1, _ := p.NewEnclave()
	e2, _ := p.NewEnclave()
	defer e1.Destroy()
	defer e2.Destroy()
	th1, th2 := enterThread(t, e1), enterThread(t, e2)

	buf := make([]byte, phys.PageSize)
	touch := func(th *Thread, base uint64, pages int) {
		for i := 0; i < pages; i++ {
			th.Write(base+uint64(i)*phys.PageSize, buf)
		}
	}
	// e2 fills its 128 pages; then, with e2's share cut to 32 frames,
	// e1 faults in 224 pages. The last 96 faults run reclaim rounds that
	// must all score e2 as the victim (resident 128 − quota 32 = +96 vs
	// e1's ≤ 0) even though e1 is the enclave doing the faulting.
	a1 := e1.AllocPages(224)
	a2 := e2.AllocPages(128)
	touch(th2, a2, 128)
	p.Driver.SetEPCShares(map[int]uint64{
		e1.ID(): 224 * phys.PageSize,
		e2.ID(): 32 * phys.PageSize,
	})
	touch(th1, a1, 224)
	_, _, _, ev1, _ := e1.Stats().Snapshot()
	_, _, _, ev2, _ := e2.Stats().Snapshot()
	if ev2 < 64 {
		t.Fatalf("under-share enclave absorbed only %d evictions", ev2)
	}
	if ev1 > ev2/4 {
		t.Fatalf("evictions not steered by shares: e1=%d e2=%d", ev1, ev2)
	}

	// Flip the table and the pressure must follow: e2 re-faults its
	// evicted pages and every round now reclaims from e1.
	p.Driver.SetEPCShares(map[int]uint64{
		e1.ID(): 32 * phys.PageSize,
		e2.ID(): 224 * phys.PageSize,
	})
	touch(th2, a2, 128)
	_, _, _, ev1b, _ := e1.Stats().Snapshot()
	if ev1b <= ev1 {
		t.Fatal("flipping the table did not move eviction pressure to e1")
	}
}

// TestShareWalkDeterministic pins the sorted-id walk: repeated quota
// queries and victim-driven reclaims under the same table give identical
// results regardless of map iteration order.
func TestShareWalkDeterministic(t *testing.T) {
	run := func() []uint64 {
		p := testPlatform(t, 1<<20)
		var encls []*Enclave
		for i := 0; i < 5; i++ {
			e, _ := p.NewEnclave()
			encls = append(encls, e)
		}
		p.Driver.SetEPCShares(map[int]uint64{
			encls[1].ID(): 64 * phys.PageSize,
			encls[3].ID(): 32 * phys.PageSize,
		})
		var out []uint64
		for _, e := range encls {
			out = append(out, p.Driver.AvailableEPCBytesFor(e.ID()))
		}
		th := enterThread(t, encls[0])
		buf := make([]byte, phys.PageSize)
		a := encls[0].AllocPages(300) // > PRM: forces reclaim rounds
		for i := 0; i < 300; i++ {
			th.Write(a+uint64(i)*phys.PageSize, buf)
		}
		out = append(out, th.T.Cycles(), p.Driver.Stats().Evictions)
		return out
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("share arbitration not deterministic:\nrun1 %v\nrun2 %v", r1, r2)
	}
}

// TestShareRebalanceUnderLoadRace drives two faulting tenants while a
// third goroutine keeps swapping the share table — the fleet
// controller's rebalance racing live faults. Run under -race; the
// assertions only sanity-check liveness.
func TestShareRebalanceUnderLoadRace(t *testing.T) {
	p := testPlatform(t, 1<<20)
	e1, _ := p.NewEnclave()
	e2, _ := p.NewEnclave()
	defer e1.Destroy()
	defer e2.Destroy()

	var wg sync.WaitGroup
	fault := func(e *Enclave) {
		defer wg.Done()
		th := e.NewThread()
		th.Enter()
		defer th.Exit()
		buf := make([]byte, phys.PageSize)
		a := e.AllocPages(192)
		for round := 0; round < 6; round++ {
			for i := 0; i < 192; i++ {
				th.Write(a+uint64(i)*phys.PageSize, buf)
			}
		}
	}
	wg.Add(3)
	go fault(e1)
	go fault(e2)
	go func() {
		defer wg.Done()
		for i := 0; i < 400; i++ {
			big, small := e1.ID(), e2.ID()
			if i%2 == 1 {
				big, small = small, big
			}
			p.Driver.SetEPCShares(map[int]uint64{
				big:   192 * phys.PageSize,
				small: 64 * phys.PageSize,
			})
		}
		p.Driver.SetEPCShares(nil)
	}()
	wg.Wait()
	if got := p.Driver.Stats().ShareUpdates; got != 400 {
		t.Fatalf("ShareUpdates = %d, want 400", got)
	}
	if p.Driver.EPCShares() != nil {
		t.Fatal("table not cleared at the end")
	}
}

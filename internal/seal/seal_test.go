package seal

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"eleos/internal/cycles"
)

func newSealer(t testing.TB) *Sealer {
	t.Helper()
	s, err := New(cycles.DefaultModel())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSealOpenRoundTrip(t *testing.T) {
	s := newSealer(t)
	th := cycles.NewThread(1, cycles.DefaultModel())
	pt := []byte("page contents worth protecting")
	aad := AddrAAD(0x1234000)
	nonce, ct := s.Seal(th, nil, pt, aad)
	if len(ct) != SealedLen(len(pt)) {
		t.Fatalf("ciphertext length %d want %d", len(ct), SealedLen(len(pt)))
	}
	if bytes.Contains(ct, pt[:8]) {
		t.Fatal("ciphertext leaks plaintext")
	}
	got, err := s.Open(th, nil, ct, aad, nonce)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, pt) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestTamperDetection(t *testing.T) {
	s := newSealer(t)
	pt := make([]byte, 4096)
	aad := AddrAAD(42)
	nonce, ct := s.Seal(nil, nil, pt, aad)
	for _, bit := range []int{0, len(ct) / 2, len(ct) - 1} {
		bad := append([]byte(nil), ct...)
		bad[bit] ^= 0x01
		if _, err := s.Open(nil, nil, bad, aad, nonce); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("tamper at byte %d not detected: %v", bit, err)
		}
	}
}

func TestAADBindingPreventsBlobSwap(t *testing.T) {
	// Two pages sealed at different addresses must not be exchangeable
	// by the untrusted OS.
	s := newSealer(t)
	n1, ct1 := s.Seal(nil, nil, []byte("page one"), AddrAAD(0x1000))
	if _, err := s.Open(nil, nil, ct1, AddrAAD(0x2000), n1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("blob accepted at wrong address: %v", err)
	}
}

func TestReplayPreventedByNonceFreshness(t *testing.T) {
	// The trusted side keeps only the latest nonce; an old ciphertext
	// replayed against it must fail.
	s := newSealer(t)
	aad := AddrAAD(7)
	_, ctOld := s.Seal(nil, nil, []byte("version 1"), aad)
	nNew, _ := s.Seal(nil, nil, []byte("version 2"), aad)
	if _, err := s.Open(nil, nil, ctOld, aad, nNew); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("stale blob accepted against fresh nonce: %v", err)
	}
}

func TestNoncesNeverRepeat(t *testing.T) {
	s := newSealer(t)
	seen := make(map[Nonce]bool)
	for i := 0; i < 10000; i++ {
		n, _ := s.Seal(nil, nil, []byte{1}, nil)
		if seen[n] {
			t.Fatalf("nonce repeated after %d seals", i)
		}
		seen[n] = true
	}
}

func TestCycleChargingFollowsModel(t *testing.T) {
	m := cycles.DefaultModel()
	s, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	th := cycles.NewThread(1, m)
	pt := make([]byte, 4096)
	s.Seal(th, nil, pt, nil)
	if got, want := th.Cycles(), m.AESCycles(4096); got != want {
		t.Fatalf("seal charged %d cycles, want %d", got, want)
	}
}

// TestSealProperty: any payload round-trips; any single-byte corruption
// of ciphertext, nonce or AAD is rejected.
func TestSealProperty(t *testing.T) {
	s := newSealer(t)
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := make([]byte, 1+rng.Intn(8192))
		rng.Read(pt)
		aad := AddrAAD(rng.Uint64())
		nonce, ct := s.Seal(nil, nil, pt, aad)
		out, err := s.Open(nil, nil, ct, aad, nonce)
		if err != nil || !bytes.Equal(out, pt) {
			return false
		}
		// Corrupt one random byte of one of the three inputs.
		switch rng.Intn(3) {
		case 0:
			bad := append([]byte(nil), ct...)
			bad[rng.Intn(len(bad))] ^= 1 << uint(rng.Intn(8))
			_, err = s.Open(nil, nil, bad, aad, nonce)
		case 1:
			badNonce := nonce
			badNonce[rng.Intn(len(badNonce))] ^= 1 << uint(rng.Intn(8))
			_, err = s.Open(nil, nil, ct, aad, badNonce)
		case 2:
			badAAD := append([]byte(nil), aad...)
			badAAD[rng.Intn(len(badAAD))] ^= 1 << uint(rng.Intn(8))
			_, err = s.Open(nil, nil, ct, badAAD, nonce)
		}
		return errors.Is(err, ErrCorrupt)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicWithFixedKey(t *testing.T) {
	key := make([]byte, 16)
	s1, err := NewWithKey(nil, key)
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := NewWithKey(nil, key)
	// Different sealers share the key but draw independent nonces;
	// cross-opening must still work given the right nonce.
	n, ct := s1.Seal(nil, nil, []byte("cross"), nil)
	out, err := s2.Open(nil, nil, ct, nil, n)
	if err != nil || string(out) != "cross" {
		t.Fatalf("cross-sealer open failed: %v %q", err, out)
	}
}

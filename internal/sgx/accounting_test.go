package sgx

import (
	"testing"

	"eleos/internal/phys"
)

func TestInEnclaveTimeExcludesOCallWork(t *testing.T) {
	p := testPlatform(t, 4<<20)
	e, _ := p.NewEnclave()
	th := enterThread(t, e)

	// Burn some in-enclave cycles.
	addr := e.Alloc(64 << 10)
	buf := make([]byte, 4096)
	for i := 0; i < 16; i++ {
		th.Write(addr+uint64(i)*phys.PageSize, buf)
	}
	inside := th.SyncEnclaveCycles()
	if inside == 0 {
		t.Fatal("no in-enclave time recorded")
	}

	// An OCALL whose host work is huge must not count as in-enclave.
	th.OCall(func(h *HostCtx) {
		h.Thread().T.Charge(1_000_000)
	})
	after := th.SyncEnclaveCycles()
	if after-inside > 50_000 {
		t.Fatalf("OCALL host work leaked into in-enclave time: +%d", after-inside)
	}
	if th.T.Cycles() < 1_000_000 {
		t.Fatal("host work not charged at all")
	}
}

func TestChargeOutside(t *testing.T) {
	p := testPlatform(t, 4<<20)
	e, _ := p.NewEnclave()
	th := enterThread(t, e)
	th.ResetEnclaveCycles()
	th.ChargeOutside(500_000)
	if got := th.SyncEnclaveCycles(); got > 1000 {
		t.Fatalf("ChargeOutside attributed %d cycles to the enclave", got)
	}
	if th.T.Cycles() < 500_000 {
		t.Fatal("ChargeOutside lost the cycles")
	}
}

func TestFaultTimeSplitsAcrossExit(t *testing.T) {
	// A hardware fault's driver time happens outside; only the access
	// itself is in-enclave.
	p := testPlatform(t, 1<<20)
	e, _ := p.NewEnclave()
	th := enterThread(t, e)
	addr := e.Alloc(4 << 20) // 4x PRM
	buf := make([]byte, phys.PageSize)
	for pg := 0; pg < (4<<20)/phys.PageSize; pg++ {
		th.Write(addr+uint64(pg)*phys.PageSize, buf)
	}
	total := th.T.Cycles()
	inside := th.SyncEnclaveCycles()
	if inside >= total {
		t.Fatalf("in-enclave %d >= total %d despite fault exits", inside, total)
	}
	// Most of a fault-bound workload's time is outside the enclave.
	if float64(inside) > 0.6*float64(total) {
		t.Fatalf("fault-bound run attributed %d of %d cycles to the enclave", inside, total)
	}
}

func TestDriverQueueSerializesFaults(t *testing.T) {
	// Two synchronized-epoch threads faulting concurrently must observe
	// queueing: the driver's virtual-time server admits one fault at a
	// time, so contended faults are recorded.
	p := testPlatform(t, 1<<20)
	e, _ := p.NewEnclave()
	addr := e.Alloc(8 << 20)
	buf := make([]byte, phys.PageSize)
	th0 := enterThread(t, e)
	for pg := 0; pg < (8<<20)/phys.PageSize; pg++ {
		th0.Write(addr+uint64(pg)*phys.PageSize, buf)
	}
	p.Driver.ResetStats()
	th0.T.Reset()

	th1 := enterThread(t, e)
	done := make(chan struct{})
	go func() {
		defer close(done)
		b := make([]byte, phys.PageSize)
		for pg := 0; pg < 512; pg++ {
			th1.Read(addr+uint64(pg)*phys.PageSize, b)
		}
	}()
	b := make([]byte, phys.PageSize)
	for pg := 512; pg < 1024; pg++ {
		th0.Read(addr+uint64(pg)*phys.PageSize, b)
	}
	<-done
	st := p.Driver.Stats()
	if st.ContendedFault == 0 {
		t.Fatal("concurrent faulting threads never queued on the driver")
	}
	if st.QueuedCycles == 0 {
		t.Fatal("contended faults recorded no queueing delay")
	}
}

func TestWriteStreamEquivalentToWrite(t *testing.T) {
	p := testPlatform(t, 4<<20)
	e, _ := p.NewEnclave()
	th := enterThread(t, e)
	addr := e.Alloc(64 << 10)
	data := make([]byte, 10000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	th.WriteStream(addr+123, data)
	got := make([]byte, len(data))
	th.Read(addr+123, got)
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("WriteStream byte %d mismatch", i)
		}
	}
	// Host-side streaming store too.
	haddr := p.AllocHost(64 << 10)
	th.WriteStream(haddr, data)
	th.Read(haddr, got)
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("host WriteStream byte %d mismatch", i)
		}
	}
}

package bench

import (
	"eleos/internal/exitio"
	"eleos/internal/netsim"
	"eleos/internal/report"
)

func init() {
	register("io-engine", "Unified exit-less I/O engine: per-op sync RPC vs linked async chains", runIOEngine)
}

// ioKeyBytes/ioLookupCycles shape the memcached-style GET the experiment
// replays: a 16-byte key, a fixed store-lookup cost, and the request/
// response envelope sizes of the mckv wire format.
const (
	ioKeyBytes     = 16
	ioLookupCycles = 2000
	ioReqBytes     = 8 + ioKeyBytes + 28
	ioRespOverhead = 40
)

// runIOEngine measures one serving thread's GET loop — receive, decrypt,
// look up, encrypt, send — through the exitio engine in the two shapes
// the servers use:
//
//   - sync: ModeRPCSync, one single-op chain per Recv and per Send. Two
//     doorbells per request and the worker's full latency charged — the
//     pre-engine per-server switch, exactly.
//   - linked async: ModeRPCAsync over two interleaved client streams.
//     Each response SEND links the next request's RECV into one chain
//     (one doorbell per request), and the chain's latency hides behind
//     the other stream's compute — the paper's batching idea applied to
//     the request loop.
func runIOEngine(rc RunConfig) (*Result, error) {
	rc = rc.Normalize()
	ops := rc.Ops

	t := report.New("GET loop throughput by submission shape (2 RPC workers, single serving thread)",
		"value B", "sync Kops/s", "async Kops/s", "async/sync", "sync db/req", "async db/req", "sync allocs/op", "async allocs/op")
	t.Note = "db/req = trust-boundary doorbells per request; async links SEND(i)+RECV(i+1) into one chain across two streams; allocs/op = Go-heap allocations per request (host-side, not cycle-charged)"

	for _, vlen := range []int{1024, 4096} {
		syncTput, syncDB, syncAllocs, err := ioSyncRun(ops, vlen)
		if err != nil {
			return nil, err
		}
		asyncTput, asyncDB, asyncAllocs, err := ioAsyncRun(ops, vlen)
		if err != nil {
			return nil, err
		}
		t.AddRow(vlen, syncTput/1e3, asyncTput/1e3, asyncTput/syncTput, syncDB, asyncDB, syncAllocs, asyncAllocs)
	}

	return &Result{
		ID:     "io-engine",
		Title:  "Unified exit-less I/O engine: per-op sync RPC vs linked async chains",
		Tables: []*report.Table{t},
	}, nil
}

func ioSyncRun(ops, vlen int) (tput, doorbellsPerReq, allocs float64, err error) {
	v := enclaveEnv(0).withPool(2)
	defer v.close()
	eng, err := exitio.NewEngine(exitio.ModeRPCSync, v.pool)
	if err != nil {
		return 0, 0, 0, err
	}
	sock := netsim.NewSocket(v.plat, 1<<20)
	defer sock.Close()
	q := eng.NewQueue()
	key := make([]byte, ioKeyBytes)
	val := make([]byte, vlen)
	respN := vlen + ioRespOverhead
	// Ops are reused as pointers across iterations: boxing a struct op
	// into the Op interface costs one heap copy per Push, a pointer none.
	rcv := &exitio.Recv{Sock: sock, N: ioReqBytes}
	snd := &exitio.Send{Sock: sock, N: respN}

	serve := func() error {
		sock.Deliver(key)
		q.Push(rcv)
		if _, err := q.SubmitAndWait(v.th); err != nil {
			return err
		}
		v.th.Read(sock.UserBuf(), key)
		netsim.CryptoCost(v.th.T, v.plat.Model, ioReqBytes)
		v.th.T.Charge(ioLookupCycles)
		netsim.CryptoCost(v.th.T, v.plat.Model, respN)
		v.th.Write(sock.UserBuf(), val)
		q.Push(snd)
		_, err := q.SubmitAndWait(v.th)
		return err
	}

	for i := 0; i < 64; i++ { // warm-up
		if err := serve(); err != nil {
			return 0, 0, 0, err
		}
	}
	v.resetCounters()
	st0 := eng.Stats()
	m0 := allocsStart()
	for i := 0; i < ops; i++ {
		if err := serve(); err != nil {
			return 0, 0, 0, err
		}
	}
	st1 := eng.Stats()
	tput = float64(ops) / v.plat.Model.Seconds(v.th.T.Cycles())
	doorbellsPerReq = float64(st1.Doorbells-st0.Doorbells) / float64(ops)
	allocs = allocsPerOp(m0, ops)
	return tput, doorbellsPerReq, allocs, nil
}

func ioAsyncRun(ops, vlen int) (tput, doorbellsPerReq, allocs float64, err error) {
	v := enclaveEnv(0).withPool(2)
	defer v.close()
	eng, err := exitio.NewEngine(exitio.ModeRPCAsync, v.pool)
	if err != nil {
		return 0, 0, 0, err
	}
	type stream struct {
		sock *netsim.Socket
		q    *exitio.Queue
		rcv  *exitio.Recv
		snd  *exitio.Send
	}
	key := make([]byte, ioKeyBytes)
	val := make([]byte, vlen)
	respN := vlen + ioRespOverhead
	var streams [2]stream
	for i := range streams {
		sock := netsim.NewSocket(v.plat, 1<<20)
		// Per-stream pointer ops, reused across iterations (a stream's
		// ops are re-pushed only after its chain has been drained).
		streams[i] = stream{
			sock: sock, q: eng.NewQueue(),
			rcv: &exitio.Recv{Sock: sock, N: ioReqBytes},
			snd: &exitio.Send{Sock: sock, N: respN},
		}
		defer streams[i].sock.Close()
	}

	// prime stages RECV of each stream's first request.
	prime := func() error {
		for i := range streams {
			streams[i].sock.Deliver(key)
			streams[i].q.Push(streams[i].rcv)
			if err := streams[i].q.Submit(v.th); err != nil {
				return err
			}
		}
		return nil
	}
	// serve drains stream s's in-flight chain (freeing its socket),
	// computes the response, and rings one doorbell carrying SEND(i)
	// linked with RECV(i+1) — while the other stream's chain runs on a
	// worker behind this compute.
	serve := func(s *stream, last bool) error {
		reaped := s.q.WaitN(v.th, s.q.InFlight())
		if err := exitio.FirstErr(reaped); err != nil {
			return err
		}
		v.th.Read(s.sock.UserBuf(), key)
		netsim.CryptoCost(v.th.T, v.plat.Model, ioReqBytes)
		v.th.T.Charge(ioLookupCycles)
		netsim.CryptoCost(v.th.T, v.plat.Model, respN)
		v.th.Write(s.sock.UserBuf(), val)
		s.q.Push(s.snd)
		if !last {
			s.sock.Deliver(key)
			s.q.PushLinked(s.rcv)
		}
		return s.q.Submit(v.th)
	}
	drain := func() error {
		for i := range streams {
			if err := exitio.FirstErr(streams[i].q.WaitN(v.th, streams[i].q.InFlight())); err != nil {
				return err
			}
		}
		return nil
	}

	if err := prime(); err != nil {
		return 0, 0, 0, err
	}
	for i := 0; i < 64; i++ { // warm-up
		if err := serve(&streams[i%2], i >= 62); err != nil {
			return 0, 0, 0, err
		}
	}
	if err := drain(); err != nil {
		return 0, 0, 0, err
	}
	v.resetCounters()
	st0 := eng.Stats()
	m0 := allocsStart()
	if err := prime(); err != nil {
		return 0, 0, 0, err
	}
	for i := 0; i < ops; i++ {
		if err := serve(&streams[i%2], i >= ops-2); err != nil {
			return 0, 0, 0, err
		}
	}
	if err := drain(); err != nil {
		return 0, 0, 0, err
	}
	st1 := eng.Stats()
	tput = float64(ops) / v.plat.Model.Seconds(v.th.T.Cycles())
	doorbellsPerReq = float64(st1.Doorbells-st0.Doorbells) / float64(ops)
	allocs = allocsPerOp(m0, ops)
	return tput, doorbellsPerReq, allocs, nil
}
